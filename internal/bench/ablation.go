package bench

import (
	"fmt"
	"io"

	"ditto/internal/core"
	"ditto/internal/sim"
	"ditto/internal/workload"
)

// Fig24 reproduces Figure 24: contribution of each technique, measured by
// gradually disabling them on the webmail-like workload without miss
// penalties:
//
//	Ditto          — everything on
//	-FC/LWU        — frequency-counter cache and lazy weight update off
//	-LWH           — conventional remote FIFO history instead of the
//	                 lightweight embedded one
//	-SFHT          — metadata stored with objects instead of slots
func Fig24(w io.Writer, scale Scale) error {
	header(w, "Figure 24: ablation (webmail-like, no miss penalty)")
	n := scale.pick(30000, 150000)
	fp := scale.pick(4000, 20000)
	clients := scale.pick(16, 64)
	trace := workload.Webmail(n, fp, 241).Build()
	capObjs := fp / 10

	run := func(mod func(*core.Options)) Result {
		env := sim.NewEnv(41)
		opts := core.DefaultOptions(capObjs, capObjs*objClassBytes)
		mod(&opts)
		cl := core.NewCluster(env, opts)
		return RunTrace(env, DittoFactory(cl), trace, clients, 2, 0)
	}

	full := run(func(*core.Options) {})
	noFC := run(func(o *core.Options) {
		o.FCCacheBytes = 0
		o.EagerWeightSync = true
	})
	noLWH := run(func(o *core.Options) {
		o.FCCacheBytes = 0
		o.EagerWeightSync = true
		o.DisableLWH = true
	})
	noSFHT := run(func(o *core.Options) {
		o.FCCacheBytes = 0
		o.EagerWeightSync = true
		o.DisableLWH = true
		o.DisableSFHT = true
	})

	row(w, "configuration", "tput(Mops)", "vs full")
	for _, e := range []struct {
		name string
		r    Result
	}{
		{"Ditto (full)", full},
		{"- FC cache & lazy weight update", noFC},
		{"- lightweight history", noLWH},
		{"- sample-friendly hash table", noSFHT},
	} {
		row(w, e.name, e.r.Mops(), e.r.Mops()/full.Mops())
	}
	return nil
}

// Fig25 reproduces Figure 25: YCSB-C throughput and p99 latency across FC
// cache sizes — combining more RDMA_FAAs buys throughput up to ~5 MB,
// after which the gain saturates.
func Fig25(w io.Writer, scale Scale) error {
	header(w, "Figure 25: throughput/p99 vs FC cache size (YCSB-C)")
	keys := scale.pick(4000, 50000)
	clients := scale.pick(64, 256)
	opsEach := scale.pick(500, 2000)

	sizes := []int{0, 64 << 10, 1 << 20, 5 << 20, 10 << 20, 50 << 20}
	row(w, "fc-size", "Mops", "p99(us)")
	for _, size := range sizes {
		env := sim.NewEnv(42)
		opts := core.DefaultOptions(keys*2, keys*512)
		opts.FCCacheBytes = size
		cl := core.NewCluster(env, opts)
		factory := DittoFactory(cl)
		RunLoad(env, factory, loadKeys(keys), 16)
		r := RunClosedLoop(env, factory, ycsbGen(workload.YCSBC, keys), clients, opsEach, 5)
		label := "0"
		if size > 0 {
			label = fmt.Sprintf("%dMB", size>>20)
			if size < 1<<20 {
				label = fmt.Sprintf("%dKB", size>>10)
			}
		}
		row(w, label, r.Mops(), r.P99())
	}
	return nil
}
