package ring

import "testing"

func TestOwnerDeterministic(t *testing.T) {
	a := New(0, 0, 1, 2)
	b := New(0, 2, 1, 0) // insertion order must not matter
	for k := uint64(0); k < 5000; k++ {
		p := Point(k)
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("key %d: owner differs across construction orders", k)
		}
	}
}

func TestBalance(t *testing.T) {
	r := New(0, 0, 1, 2, 3)
	counts := map[int]int{}
	const n = 40000
	for k := uint64(0); k < n; k++ {
		counts[r.Owner(Point(k))]++
	}
	mean := n / 4
	for node, c := range counts {
		if c < mean*6/10 || c > mean*14/10 {
			t.Errorf("node %d owns %d keys, want within 40%% of %d", node, c, mean)
		}
	}
}

func TestWithMovesKeysOnlyToNewNode(t *testing.T) {
	old := New(0, 0, 1, 2)
	grown := old.With(3)
	moved := 0
	const n = 20000
	for k := uint64(0); k < n; k++ {
		p := Point(k)
		was, is := old.Owner(p), grown.Owner(p)
		if was != is {
			moved++
			if is != 3 {
				t.Fatalf("key %d moved %d→%d; only the new node may gain keys", k, was, is)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if moved > n/2 {
		t.Fatalf("%d/%d keys moved; consistent hashing should move ~1/4", moved, n)
	}
}

func TestWithoutMovesOnlyRemovedNodesKeys(t *testing.T) {
	old := New(0, 0, 1, 2, 3)
	shrunk := old.Without(3)
	for k := uint64(0); k < 20000; k++ {
		p := Point(k)
		was, is := old.Owner(p), shrunk.Owner(p)
		if was != 3 && was != is {
			t.Fatalf("key %d moved %d→%d although its owner was not removed", k, was, is)
		}
		if is == 3 {
			t.Fatalf("key %d still routed to removed node", k)
		}
	}
}

func TestMembership(t *testing.T) {
	r := New(4)
	if r.NumNodes() != 0 {
		t.Fatal("empty ring has members")
	}
	r = r.With(7).With(7).With(2)
	if r.NumNodes() != 2 || !r.Has(7) || !r.Has(2) || r.Has(3) {
		t.Fatalf("membership wrong: %v", r.Nodes())
	}
	if got := r.Nodes(); got[0] != 2 || got[1] != 7 {
		t.Fatalf("nodes not sorted: %v", got)
	}
	r = r.Without(9) // no-op
	if r.NumNodes() != 2 {
		t.Fatal("removing non-member changed ring")
	}
	if r.VirtualPoints() != 4 {
		t.Fatalf("virtual points = %d", r.VirtualPoints())
	}
}

// TestOwnersNProperties pins the successor-list semantics the hot-key
// replication layer depends on: OwnersN(k, R) returns R distinct nodes,
// is a prefix-stable extension of Owner, and changes minimally across
// With/Without (existing successors never reorder; the changed node only
// splices in or out).
func TestOwnersNProperties(t *testing.T) {
	r := New(0, 0, 1, 2, 3, 4)
	for k := uint64(0); k < 5000; k++ {
		p := Point(k)
		full := r.OwnersN(p, r.NumNodes())
		if len(full) != r.NumNodes() {
			t.Fatalf("key %d: OwnersN(all) returned %d nodes, want %d", k, len(full), r.NumNodes())
		}
		seen := map[int]bool{}
		for _, n := range full {
			if seen[n] {
				t.Fatalf("key %d: duplicate node %d in %v", k, n, full)
			}
			if !r.Has(n) {
				t.Fatalf("key %d: non-member %d in %v", k, n, full)
			}
			seen[n] = true
		}
		if full[0] != r.Owner(p) {
			t.Fatalf("key %d: OwnersN[0]=%d, Owner=%d", k, full[0], r.Owner(p))
		}
		// Prefix stability: every shorter request is a prefix of the full
		// list (so a replication factor change never reshuffles replicas).
		for n := 1; n < len(full); n++ {
			pre := r.OwnersN(p, n)
			if len(pre) != n {
				t.Fatalf("key %d: OwnersN(%d) returned %d nodes", k, n, len(pre))
			}
			for i := range pre {
				if pre[i] != full[i] {
					t.Fatalf("key %d: OwnersN(%d)=%v not a prefix of %v", k, n, pre, full)
				}
			}
		}
	}
	// Over-asking clamps to the member count instead of repeating nodes.
	if got := r.OwnersN(Point(1), 99); len(got) != r.NumNodes() {
		t.Fatalf("OwnersN over-ask returned %d nodes, want %d", len(got), r.NumNodes())
	}
}

// TestOwnersNMinimalChange checks successor lists across membership
// changes: under r.With(x), deleting x from the new list must leave a
// prefix of the old list (and symmetrically for Without) — so a reshard
// invalidates only replica placements involving the changed node.
func TestOwnersNMinimalChange(t *testing.T) {
	const R = 3
	old := New(0, 0, 1, 2, 3)
	grown := old.With(4)
	shrunk := old.Without(3)
	dropNode := func(s []int, x int) []int {
		out := make([]int, 0, len(s))
		for _, n := range s {
			if n != x {
				out = append(out, n)
			}
		}
		return out
	}
	isPrefix := func(pre, s []int) bool {
		if len(pre) > len(s) {
			return false
		}
		for i := range pre {
			if pre[i] != s[i] {
				return false
			}
		}
		return true
	}
	for k := uint64(0); k < 5000; k++ {
		p := Point(k)
		was := old.OwnersN(p, R)
		withNew := grown.OwnersN(p, R)
		if !isPrefix(dropNode(withNew, 4), was) {
			t.Fatalf("key %d: With(4) reordered successors: %v → %v", k, was, withNew)
		}
		without := shrunk.OwnersN(p, R)
		if !isPrefix(dropNode(was, 3), without) {
			t.Fatalf("key %d: Without(3) reordered successors: %v → %v", k, was, without)
		}
	}
}

func TestOwnerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty ring")
		}
	}()
	New(0).Owner(1)
}
