package core

import (
	"bytes"
	"fmt"
	"testing"

	"ditto/internal/sim"
)

// newTestCluster builds a small cluster; experts defaults to LRU+LFU.
func newTestCluster(env *sim.Env, objects int, experts ...string) *Cluster {
	opts := DefaultOptions(objects, objects*320)
	if len(experts) > 0 {
		opts.Experts = experts
	}
	return NewCluster(env, opts)
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64) }

func TestSetGetRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 100; i++ {
			c.Set(key(i), value(i))
		}
		for i := 0; i < 100; i++ {
			v, ok := c.Get(key(i))
			if !ok {
				t.Fatalf("key %d missing", i)
			}
			if !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d: wrong value", i)
			}
		}
		if c.Stats.Hits != 100 || c.Stats.Misses != 0 {
			t.Fatalf("stats = %+v", c.Stats)
		}
	})
	env.Run()
}

func TestGetMiss(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		if _, ok := c.Get([]byte("absent")); ok {
			t.Fatal("hit on empty cache")
		}
		if c.Stats.Misses != 1 {
			t.Fatalf("misses = %d", c.Stats.Misses)
		}
	})
	env.Run()
}

func TestSetOverwrites(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("k"), []byte("v1"))
		c.Set([]byte("k"), []byte("v2-longer-than-before"))
		v, ok := c.Get([]byte("k"))
		if !ok || string(v) != "v2-longer-than-before" {
			t.Fatalf("got %q ok=%v", v, ok)
		}
		// The old block must have been freed (no leak): live bytes is one
		// object.
		if cl.MN.UsedBytes > 128 {
			t.Fatalf("allocated %d bytes for one small object", cl.MN.UsedBytes)
		}
	})
	env.Run()
}

func TestDelete(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		if !c.Delete([]byte("k")) {
			t.Fatal("delete of present key returned false")
		}
		if _, ok := c.Get([]byte("k")); ok {
			t.Fatal("deleted key still readable")
		}
		if c.Delete([]byte("k")) {
			t.Fatal("second delete returned true")
		}
		if cl.MN.UsedBytes != 0 {
			t.Fatalf("leak: %d bytes after delete", cl.MN.UsedBytes)
		}
	})
	env.Run()
}

func TestGetVerbBudget(t *testing.T) {
	// §4.1: a Get is two RDMA_READs (bucket + object); metadata updates
	// ride asynchronously (1 WRITE, FAA amortized by the FC cache).
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		s0 := cl.MN.Node.Stats
		c.Get([]byte("k"))
		d := cl.MN.Node.Stats
		if reads := d.Reads - s0.Reads; reads != 2 {
			t.Errorf("Get used %d READs, want 2", reads)
		}
		if cas := d.CASes - s0.CASes; cas != 0 {
			t.Errorf("Get used %d CASes, want 0", cas)
		}
		if rpcs := d.RPCs - s0.RPCs; rpcs != 0 {
			t.Errorf("Get used %d RPCs, want 0", rpcs)
		}
		if w := d.Writes - s0.Writes; w != 1 {
			t.Errorf("Get used %d WRITEs, want 1 (async last_ts)", w)
		}
	})
	env.Run()
}

func TestSetVerbBudget(t *testing.T) {
	// §4.1: an insert is READ (search) + WRITE (object) + CAS (publish);
	// the metadata init WRITE is asynchronous. Segment allocation RPC is
	// amortized.
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 1000)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("warm"), []byte("up")) // pulls the first segment
		s0 := cl.MN.Node.Stats
		c.Set([]byte("k"), []byte("v"))
		d := cl.MN.Node.Stats
		if reads := d.Reads - s0.Reads; reads != 1 {
			t.Errorf("insert used %d READs, want 1", reads)
		}
		if w := d.Writes - s0.Writes; w != 2 {
			t.Errorf("insert used %d WRITEs, want 2 (object + async meta)", w)
		}
		if cas := d.CASes - s0.CASes; cas != 1 {
			t.Errorf("insert used %d CASes, want 1", cas)
		}
		if rpcs := d.RPCs - s0.RPCs; rpcs != 0 {
			t.Errorf("insert used %d RPCs, want 0", rpcs)
		}
	})
	env.Run()
}

func TestEvictionKeepsCapacity(t *testing.T) {
	env := sim.NewEnv(1)
	const objects = 200
	cl := newTestCluster(env, objects)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < objects*4; i++ {
			c.Set(key(i), value(i))
		}
		if c.Stats.Evictions == 0 {
			t.Fatal("no evictions despite 4x capacity inserts")
		}
		if cl.MN.UsedBytes > cl.Options().CacheBytes {
			t.Fatalf("allocated %d > capacity %d", cl.MN.UsedBytes, cl.Options().CacheBytes)
		}
		// Recent keys must be mostly resident (LRU/LFU both keep them).
		hits := 0
		for i := objects*4 - 50; i < objects*4; i++ {
			if _, ok := c.Get(key(i)); ok {
				hits++
			}
		}
		if hits < 25 {
			t.Fatalf("only %d/50 recent keys resident after evictions", hits)
		}
	})
	env.Run()
}

func TestSingleExpertSkipsHistory(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100, "LRU")
	if cl.Adaptive() {
		t.Fatal("single expert must disable adaptive caching")
	}
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 400; i++ {
			c.Set(key(i), value(i))
		}
		if c.Stats.Evictions == 0 {
			t.Fatal("no evictions")
		}
		if c.hist.Inserts != 0 {
			t.Fatal("single-expert mode created history entries")
		}
		if c.Weights() != nil {
			t.Fatal("weights exposed without adaptive caching")
		}
	})
	env.Run()
	// The global history counter must never have been touched.
	if v := cl.MN.Node.Uint64At(0); v != 0 {
		t.Fatalf("history counter = %d", v)
	}
}

func TestAdaptiveCreatesHistoryAndRegrets(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 300; i++ {
			c.Set(key(i), value(i))
		}
		if c.hist.Inserts == 0 {
			t.Fatal("no history entries despite evictions")
		}
		// Re-request evicted keys: some must hit the history (regrets).
		for i := 0; i < 300; i++ {
			c.Get(key(i))
		}
		if c.Stats.Regrets == 0 {
			t.Fatal("no regrets collected re-reading evicted keys")
		}
		w := c.Weights()
		if len(w) != 2 {
			t.Fatalf("weights = %v", w)
		}
	})
	env.Run()
}

func TestRegretNotDoubleCounted(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 600; i++ {
			c.Set(key(i), value(i))
		}
		// Find an evicted key.
		evicted := -1
		for i := 0; i < 600; i++ {
			if _, ok := c.Get(key(i)); !ok {
				evicted = i
				break
			}
		}
		if evicted < 0 {
			t.Error("nothing evicted despite 6x capacity inserts")
			return
		}
		before := c.Stats.Regrets
		c.Get(key(evicted)) // may or may not be a fresh regret (first Get consumed it)
		c.Get(key(evicted))
		after := c.Stats.Regrets
		if after-before > 1 {
			t.Fatalf("same miss penalized %d times", after-before)
		}
	})
	env.Run()
}

func TestMultiClientSharing(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 1000)
	const writers = 4
	done := 0
	for w := 0; w < writers; w++ {
		w := w
		env.Go("writer", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for i := w * 50; i < (w+1)*50; i++ {
				c.Set(key(i), value(i))
				p.Sleep(sim.Microsecond)
			}
			done++
		})
	}
	env.Run()
	if done != writers {
		t.Fatal("writers did not finish")
	}
	env.Go("reader", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < writers*50; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Errorf("cross-client read of key %d failed", i)
				return
			}
		}
	})
	env.Run()
}

func TestConcurrentSameKeySetsConverge(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	for i := 0; i < 8; i++ {
		i := i
		env.Go("w", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for r := 0; r < 10; r++ {
				c.Set([]byte("contended"), []byte(fmt.Sprintf("v-%d-%d", i, r)))
			}
		})
	}
	env.Run()
	env.Go("r", func(p *sim.Proc) {
		c := cl.NewClient(p)
		v, ok := c.Get([]byte("contended"))
		if !ok {
			t.Error("contended key lost")
			return
		}
		if len(v) < 4 || string(v[:2]) != "v-" {
			t.Errorf("corrupted value %q", v)
		}
	})
	env.Run()
}

func TestExtensionAlgorithmsEndToEnd(t *testing.T) {
	// LRUK + LRFU both carry extension metadata through the object heap.
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 200, "LRUK", "LRFU")
	if cl.totalExt != 16+16 {
		t.Fatalf("totalExt = %d", cl.totalExt)
	}
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		for i := 0; i < 2000; i++ {
			c.Set(key(i%1200), value(i%1200))
			c.Get(key(i % 97))
			p.Sleep(sim.Microsecond)
		}
		if c.Stats.Evictions == 0 {
			t.Fatal("no evictions")
		}
		v, ok := c.Get(key(96))
		if !ok || !bytes.Equal(v, value(96)) {
			t.Fatal("hot key lost or corrupted with extension metadata")
		}
	})
	env.Run()
}

func TestCloseFlushes(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		c.Set([]byte("k"), []byte("v"))
		for i := 0; i < 5; i++ {
			c.Get([]byte("k"))
		}
		if c.fc.Len() == 0 {
			t.Fatal("expected buffered freq deltas")
		}
		c.Close()
		if c.fc.Len() != 0 {
			t.Fatal("Close did not flush the FC cache")
		}
	})
	env.Run()
}

func TestGrowCacheReducesEvictions(t *testing.T) {
	run := func(grow bool) int64 {
		env := sim.NewEnv(1)
		cl := newTestCluster(env, 100)
		var ev int64
		env.Go("c", func(p *sim.Proc) {
			c := cl.NewClient(p)
			for i := 0; i < 200; i++ {
				c.Set(key(i), value(i))
			}
			if grow {
				cl.GrowCache(cl.Options().CacheBytes * 2)
			}
			for i := 200; i < 400; i++ {
				c.Set(key(i), value(i))
			}
			ev = c.Stats.Evictions
		})
		env.Run()
		return ev
	}
	small, grown := run(false), run(true)
	if grown >= small {
		t.Fatalf("growing the cache did not reduce evictions: %d vs %d", grown, small)
	}
}

func TestOnOpObserver(t *testing.T) {
	env := sim.NewEnv(1)
	cl := newTestCluster(env, 100)
	env.Go("c", func(p *sim.Proc) {
		c := cl.NewClient(p)
		var gets, sets int
		c.OnOp = func(op OpKind, lat int64, hit bool) {
			if lat <= 0 {
				t.Errorf("non-positive latency %d", lat)
			}
			switch op {
			case OpGet:
				gets++
			case OpSet:
				sets++
			}
		}
		c.Set([]byte("k"), []byte("v"))
		c.Get([]byte("k"))
		c.Get([]byte("missing"))
		if gets != 2 || sets != 1 {
			t.Fatalf("observer saw gets=%d sets=%d", gets, sets)
		}
	})
	env.Run()
}

func TestOptionValidation(t *testing.T) {
	env := sim.NewEnv(1)
	for name, opts := range map[string]Options{
		"no objects": {CacheBytes: 1 << 20},
		"no bytes":   {ExpectedObjects: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewCluster(env, opts)
		}()
	}
}

func TestUnknownExpertPanics(t *testing.T) {
	env := sim.NewEnv(1)
	opts := DefaultOptions(100, 1<<20)
	opts.Experts = []string{"NOPE"}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown expert")
		}
	}()
	NewCluster(env, opts)
}
