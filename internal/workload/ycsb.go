package workload

import (
	"math/rand"
)

// Req is one cache request.
type Req struct {
	Key   uint64
	Size  int  // object size in bytes (key+value payload)
	Write bool // true for UPDATE/INSERT, false for GET
}

// DefaultObjectSize is the paper's 256-byte key-value pairs.
const DefaultObjectSize = 256

// Generator produces an endless request stream.
type Generator interface {
	Next(rng *rand.Rand) Req
}

// YCSBKind selects a core workload.
type YCSBKind int

// The four YCSB core workloads used in the evaluation (§5.1):
// A = 50% GET / 50% UPDATE, B = 95/5, C = read-only, D = 95% GET /
// 5% INSERT with latest-distribution reads.
const (
	YCSBA YCSBKind = iota
	YCSBB
	YCSBC
	YCSBD
)

// String names the workload.
func (k YCSBKind) String() string {
	return [...]string{"YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D"}[k]
}

// WriteFraction returns the workload's update/insert ratio.
func (k YCSBKind) WriteFraction() float64 {
	return [...]float64{0.5, 0.05, 0, 0.05}[k]
}

// YCSB generates a core workload over a pre-loaded key space.
type YCSB struct {
	kind   YCSBKind
	keys   uint64
	zipf   *ScrambledZipfian
	latest *Latest
	size   int
}

// NewYCSB builds workload kind over `keys` pre-generated keys of the given
// object size (paper: 10 M keys × 256 B, Zipfian θ=0.99).
func NewYCSB(kind YCSBKind, keys uint64, size int) *YCSB {
	if keys == 0 {
		panic("workload: need at least one key")
	}
	if size <= 0 {
		size = DefaultObjectSize
	}
	w := &YCSB{kind: kind, keys: keys, size: size}
	if kind == YCSBD {
		w.latest = NewLatest(keys, 0.99)
	} else {
		w.zipf = NewScrambledZipfian(keys, 0.99)
	}
	return w
}

// Next implements Generator.
func (w *YCSB) Next(rng *rand.Rand) Req {
	switch w.kind {
	case YCSBD:
		if rng.Float64() < 0.05 {
			return Req{Key: w.latest.Advance(), Size: w.size, Write: true}
		}
		return Req{Key: w.latest.Next(rng), Size: w.size}
	default:
		r := Req{Key: w.zipf.Next(rng), Size: w.size}
		r.Write = rng.Float64() < w.kind.WriteFraction()
		return r
	}
}

// Keys returns the initial key-space size.
func (w *YCSB) Keys() uint64 { return w.keys }

// Uniform generates uniformly random keys (used by microbenchmarks).
type Uniform struct {
	Keys2     uint64
	Size      int
	WriteFrac float64
}

// NewUniform builds a uniform generator.
func NewUniform(keys uint64, size int, writeFrac float64) *Uniform {
	return &Uniform{Keys2: keys, Size: size, WriteFrac: writeFrac}
}

// Next implements Generator.
func (u *Uniform) Next(rng *rand.Rand) Req {
	return Req{
		Key:   rng.Uint64() % u.Keys2,
		Size:  u.Size,
		Write: rng.Float64() < u.WriteFrac,
	}
}

// Generate materializes n requests from g with a deterministic seed.
func Generate(g Generator, n int, seed int64) []Req {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Req, n)
	for i := range out {
		out[i] = g.Next(rng)
	}
	return out
}

// Shard splits a trace into k contiguous shards (the paper truncates and
// shards traces so independent clients can load them concurrently).
func Shard(reqs []Req, k int) [][]Req {
	if k < 1 {
		panic("workload: shards must be >= 1")
	}
	out := make([][]Req, k)
	per := (len(reqs) + k - 1) / k
	for i := 0; i < k; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(reqs) {
			lo = len(reqs)
		}
		if hi > len(reqs) {
			hi = len(reqs)
		}
		out[i] = reqs[lo:hi]
	}
	return out
}

// Interleave merges shards round-robin: the combined access pattern that a
// cache observes when k clients execute the shards concurrently. This is
// how changing compute resources changes the access pattern (§3.2): the
// same trace interleaved k ways has different recency behaviour.
func Interleave(shards [][]Req) []Req {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]Req, 0, total)
	idx := make([]int, len(shards))
	for len(out) < total {
		for i, s := range shards {
			if idx[i] < len(s) {
				out = append(out, s[idx[i]])
				idx[i]++
			}
		}
	}
	return out
}

// KeyBytes renders a key as the fixed-width byte string clients store.
func KeyBytes(key uint64) []byte {
	// "k" + zero-padded lowercase hex, minimum 15 digits — byte-identical
	// to fmt.Sprintf("k%015x", key) at a single allocation (the Sprintf
	// was the benchmark drivers' hottest per-op allocation site).
	const digits = "0123456789abcdef"
	n := 15
	for t := key >> 60; t != 0; t >>= 4 {
		n++
	}
	b := make([]byte, n+1)
	b[0] = 'k'
	for i := n; i >= 1; i-- {
		b[i] = digits[key&0xf]
		key >>= 4
	}
	return b
}

// Footprint returns the number of unique keys in a trace — the quantity
// the paper sizes caches against ("% of footprint").
func Footprint(reqs []Req) int {
	seen := make(map[uint64]struct{}, len(reqs)/4+1)
	for _, r := range reqs {
		seen[r.Key] = struct{}{}
	}
	return len(seen)
}
