package workload

import (
	"math"
	"math/rand"
	"testing"

	"ditto/internal/cachealgo"
	"ditto/internal/simcache"
)

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000, 0.99)
	rng := rand.New(rand.NewSource(1))
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	if counts[0] < n/20 {
		t.Fatalf("rank 0 drew only %d of %d", counts[0], n)
	}
	if counts[0] <= counts[100] {
		t.Fatal("rank 0 not more popular than rank 100")
	}
}

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(100, 0.99)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if v := z.Next(rng); v >= 100 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	s := NewScrambledZipfian(10000, 0.99)
	rng := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[s.Next(rng)]++
	}
	// Find the two hottest keys: they should NOT be adjacent ranks.
	var top1, top2 uint64
	for k, c := range counts {
		if c > counts[top1] {
			top2, top1 = top1, k
		} else if c > counts[top2] {
			top2 = k
		}
	}
	if top1+1 == top2 || top2+1 == top1 {
		t.Fatalf("hot keys adjacent: %d %d (not scrambled)", top1, top2)
	}
}

func TestLatestPrefersRecent(t *testing.T) {
	l := NewLatest(1000, 0.99)
	rng := rand.New(rand.NewSource(4))
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if k := l.Next(rng); k >= 900 {
			recent++
		}
	}
	if float64(recent)/n < 0.5 {
		t.Fatalf("only %.2f%% of latest draws in newest 10%%", 100*float64(recent)/n)
	}
	was := l.Count()
	nk := l.Advance()
	if nk != was || l.Count() != was+1 {
		t.Fatal("advance bookkeeping wrong")
	}
}

func TestYCSBMixes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		kind YCSBKind
		want float64
	}{{YCSBA, 0.5}, {YCSBB, 0.05}, {YCSBC, 0}, {YCSBD, 0.05}} {
		w := NewYCSB(tc.kind, 10000, 256)
		writes := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if w.Next(rng).Write {
				writes++
			}
		}
		got := float64(writes) / n
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("%v: write fraction %.3f, want %.2f", tc.kind, got, tc.want)
		}
	}
}

func TestYCSBDInsertsGrowKeySpace(t *testing.T) {
	w := NewYCSB(YCSBD, 100, 256)
	rng := rand.New(rand.NewSource(6))
	maxKey := uint64(0)
	for i := 0; i < 5000; i++ {
		r := w.Next(rng)
		if r.Key > maxKey {
			maxKey = r.Key
		}
	}
	if maxKey < 100 {
		t.Fatal("no inserted keys beyond the initial space")
	}
}

func TestShardAndInterleave(t *testing.T) {
	reqs := make([]Req, 10)
	for i := range reqs {
		reqs[i].Key = uint64(i)
	}
	shards := Shard(reqs, 3)
	if len(shards) != 3 {
		t.Fatalf("%d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("sharding lost requests: %d", total)
	}
	merged := Interleave(shards)
	if len(merged) != 10 {
		t.Fatalf("interleave lost requests: %d", len(merged))
	}
	// Round-robin: first three are the shard heads 0, 4, 8.
	if merged[0].Key != 0 || merged[1].Key != 4 || merged[2].Key != 8 {
		t.Fatalf("interleave order: %v %v %v", merged[0].Key, merged[1].Key, merged[2].Key)
	}
	// Multiset preserved.
	seen := map[uint64]int{}
	for _, r := range merged {
		seen[r.Key]++
	}
	for i := 0; i < 10; i++ {
		if seen[uint64(i)] != 1 {
			t.Fatalf("key %d appears %d times", i, seen[uint64(i)])
		}
	}
}

func TestFootprint(t *testing.T) {
	reqs := []Req{{Key: 1}, {Key: 2}, {Key: 1}, {Key: 3}}
	if f := Footprint(reqs); f != 3 {
		t.Fatalf("footprint = %d", f)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := Webmail(5000, 2000, 42).Build()
	b := Webmail(5000, 2000, 42).Build()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := Webmail(5000, 2000, 43).Build()
	same := 0
	for i := range c {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceFootprintBounded(t *testing.T) {
	spec := LFUFriendly(20000, 3000, 7)
	reqs := spec.Build()
	if fp := Footprint(reqs); fp > spec.Footprint {
		t.Fatalf("footprint %d exceeds spec %d", fp, spec.Footprint)
	}
}

// hitRate runs a trace through an exact-eviction cache sized as a fraction
// of the footprint.
func hitRate(reqs []Req, algo cachealgo.Algorithm, footprint int, frac float64) float64 {
	capObjs := int(float64(footprint) * frac)
	if capObjs < 1 {
		capObjs = 1
	}
	c := simcache.New(algo, capObjs)
	for _, r := range reqs {
		c.Access(r.Key, r.Size)
	}
	return c.HitRate()
}

// The calibration tests below pin the property the adaptivity experiments
// rely on: the designed traces really do have the advertised algorithm
// affinity (Figures 3, 16, 17, 19).

func TestLRUFriendlyFavorsLRU(t *testing.T) {
	spec := LRUFriendly(60000, 5000, 11)
	reqs := spec.Build()
	lru := hitRate(reqs, cachealgo.NewLRU(), spec.Footprint, 0.1)
	lfu := hitRate(reqs, cachealgo.NewLFU(), spec.Footprint, 0.1)
	if lru <= lfu+0.03 {
		t.Fatalf("LRU %.3f vs LFU %.3f: trace not LRU-friendly", lru, lfu)
	}
}

func TestLFUFriendlyFavorsLFU(t *testing.T) {
	spec := LFUFriendly(60000, 5000, 12)
	reqs := spec.Build()
	lru := hitRate(reqs, cachealgo.NewLRU(), spec.Footprint, 0.1)
	lfu := hitRate(reqs, cachealgo.NewLFU(), spec.Footprint, 0.1)
	if lfu <= lru+0.03 {
		t.Fatalf("LFU %.3f vs LRU %.3f: trace not LFU-friendly", lfu, lru)
	}
}

func TestChangingHasBothRegimes(t *testing.T) {
	spec := Changing(30000, 5000, 13)
	reqs := spec.Build()
	quarter := len(reqs) / 4
	lruPhase := reqs[:quarter]
	lfuPhase := reqs[quarter : 2*quarter]
	lru1 := hitRate(lruPhase, cachealgo.NewLRU(), spec.Footprint, 0.1)
	lfu1 := hitRate(lruPhase, cachealgo.NewLFU(), spec.Footprint, 0.1)
	lru2 := hitRate(lfuPhase, cachealgo.NewLRU(), spec.Footprint, 0.1)
	lfu2 := hitRate(lfuPhase, cachealgo.NewLFU(), spec.Footprint, 0.1)
	if lru1 <= lfu1 {
		t.Errorf("phase 1 should favor LRU: %.3f vs %.3f", lru1, lfu1)
	}
	if lfu2 <= lru2 {
		t.Errorf("phase 2 should favor LFU: %.3f vs %.3f", lfu2, lru2)
	}
}

func TestSuiteDistinctAndBuildable(t *testing.T) {
	specs := Suite(16, 2000, 1000)
	if len(specs) != 16 {
		t.Fatalf("%d specs", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		if got := len(s.Build()); got != s.Requests() {
			t.Fatalf("%s: built %d of %d requests", s.Name, got, s.Requests())
		}
	}
}

func TestKeyBytesFixedWidth(t *testing.T) {
	a, b := KeyBytes(0), KeyBytes(1<<47)
	if len(a) != len(b) || len(a) != 16 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
}
