package history

import (
	"testing"

	"ditto/internal/hashtable"
	"ditto/internal/memnode"
	"ditto/internal/rdma"
	"ditto/internal/sim"
)

func setup(t *testing.T) (*sim.Env, *memnode.MemNode, hashtable.Layout) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := hashtable.Config{Buckets: 8, SlotsPerBucket: 8}
	mn := memnode.New(env, memnode.Config{MemBytes: cfg.Bytes() + 1<<20, Fabric: rdma.DefaultConfig()})
	base := mn.PlaceTable(cfg.Bytes())
	return env, mn, hashtable.Layout{Config: cfg, Base: base}
}

func TestNextIDMonotoneAcrossClients(t *testing.T) {
	env, mn, lay := setup(t)
	var ids []uint64
	for i := 0; i < 4; i++ {
		env.Go("c", func(p *sim.Proc) {
			ep := rdma.NewEndpoint(mn.Node, p)
			h := NewClient(ep, hashtable.NewHandle(lay, ep), 100)
			for k := 0; k < 5; k++ {
				ids = append(ids, h.NextID())
			}
		})
	}
	env.Run()
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate history ID %d", id)
		}
		seen[id] = true
	}
	if len(ids) != 20 {
		t.Fatalf("got %d ids", len(ids))
	}
}

func TestExpiryWindow(t *testing.T) {
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		h := NewClient(ep, hashtable.NewHandle(lay, ep), 10)
		first := h.NextID()
		for i := 0; i < 10; i++ {
			h.NextID()
		}
		// Counter is now first+11; distance 11 > l=10 ⇒ expired.
		if !h.IsExpired(first) {
			t.Errorf("entry at distance 11 not expired (counter=%d)", h.cachedCounter)
		}
		if h.IsExpired(first + 5) {
			t.Error("entry at distance 6 wrongly expired")
		}
	})
	env.Run()
}

func TestExpiryWrapAround(t *testing.T) {
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		h := NewClient(ep, hashtable.NewHandle(lay, ep), 10)
		// Force the counter near the 48-bit wrap point.
		mn.Node.PutUint64At(memnode.HistCounterAddr, (1<<48)-3)
		h.RefreshCounter()
		oldID := uint64((1 << 48) - 5) // distance 2 ⇒ valid
		if h.IsExpired(oldID) {
			t.Error("pre-wrap entry at distance 2 expired")
		}
		// Advance the counter past the wrap.
		for i := 0; i < 8; i++ {
			h.NextID()
		}
		// Counter wrapped to 5; distance to oldID = 10 ⇒ still valid.
		if h.IsExpired(oldID) {
			t.Errorf("entry exactly at capacity expired (counter=%d)", h.cachedCounter)
		}
		h.NextID()
		if !h.IsExpired(oldID) {
			t.Error("entry past capacity across wrap not expired")
		}
	})
	env.Run()
}

func TestInsertAndMatchRegret(t *testing.T) {
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		ht := hashtable.NewHandle(lay, ep)
		h := NewClient(ep, ht, 100)

		kh := hashtable.KeyHash([]byte("victim-key"))
		slotAddr := lay.SlotAddr(3)
		obj := hashtable.EncodeAtomic(hashtable.Fingerprint(kh), 4, 0x2000)
		if _, ok := ht.CASAtomic(slotAddr, 0, obj); !ok {
			t.Fatal("setup insert failed")
		}
		ht.WriteMetaOnInsert(slotAddr, kh, 1, 1, 1)

		victim := ht.ReadSlot(slotAddr)
		id, ok := h.Insert(victim, 0b10)
		if !ok {
			t.Fatal("history insert failed")
		}

		entry := ht.ReadSlot(slotAddr)
		bitmap, age, matched := h.Match(entry, kh)
		if !matched {
			t.Fatal("regret not matched")
		}
		if bitmap != 0b10 {
			t.Fatalf("bitmap = %b", bitmap)
		}
		if age != h.Age(id) {
			t.Fatalf("age = %d", age)
		}

		// Wrong hash must not match.
		if _, _, m := h.Match(entry, kh+1); m {
			t.Fatal("matched wrong key hash")
		}
		// Ordinary object slots must not match.
		if _, _, m := h.Match(victim, kh); m {
			t.Fatal("matched a non-history slot")
		}
	})
	env.Run()
}

func TestInsertLosesRace(t *testing.T) {
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		ht := hashtable.NewHandle(lay, ep)
		h := NewClient(ep, ht, 100)
		kh := hashtable.KeyHash([]byte("k"))
		slotAddr := lay.SlotAddr(0)
		obj := hashtable.EncodeAtomic(hashtable.Fingerprint(kh), 4, 0x2000)
		ht.CASAtomic(slotAddr, 0, obj)
		victim := ht.ReadSlot(slotAddr)
		// Another client deletes the object before our CAS.
		ht.CASAtomic(slotAddr, obj, 0)
		if _, ok := h.Insert(victim, 1); ok {
			t.Fatal("insert should lose the race")
		}
	})
	env.Run()
}

func TestReclaimable(t *testing.T) {
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		ht := hashtable.NewHandle(lay, ep)
		h := NewClient(ep, ht, 2)

		if !h.Reclaimable(hashtable.Slot{}) {
			t.Error("empty slot not reclaimable")
		}
		kh := hashtable.KeyHash([]byte("x"))
		obj := hashtable.Slot{Atomic: hashtable.EncodeAtomic(1, 4, 0x40)}
		if h.Reclaimable(obj) {
			t.Error("live object reclaimable")
		}

		slotAddr := lay.SlotAddr(1)
		a := hashtable.EncodeAtomic(hashtable.Fingerprint(kh), 4, 0x2000)
		ht.CASAtomic(slotAddr, 0, a)
		ht.WriteMetaOnInsert(slotAddr, kh, 1, 1, 1)
		victim := ht.ReadSlot(slotAddr)
		h.Insert(victim, 1)
		fresh := ht.ReadSlot(slotAddr)
		if h.Reclaimable(fresh) {
			t.Error("fresh history entry reclaimable")
		}
		// Age it out: capacity is 2, so 3 more IDs expire it.
		h.NextID()
		h.NextID()
		h.NextID()
		if !h.Reclaimable(fresh) {
			t.Error("expired history entry not reclaimable")
		}
	})
	env.Run()
}

func TestHistoryInsertVerbBudget(t *testing.T) {
	// §4.3.1: inserting a history entry costs 1 FAA + 1 CAS + 1 async WRITE.
	env, mn, lay := setup(t)
	env.Go("c", func(p *sim.Proc) {
		ep := rdma.NewEndpoint(mn.Node, p)
		ht := hashtable.NewHandle(lay, ep)
		h := NewClient(ep, ht, 100)
		kh := hashtable.KeyHash([]byte("v"))
		slotAddr := lay.SlotAddr(2)
		ht.CASAtomic(slotAddr, 0, hashtable.EncodeAtomic(hashtable.Fingerprint(kh), 4, 0x2000))
		victim := ht.ReadSlot(slotAddr)

		s0 := mn.Node.Stats
		h.Insert(victim, 1)
		d := mn.Node.Stats
		if faa := d.FAAs - s0.FAAs; faa != 1 {
			t.Errorf("FAAs = %d, want 1", faa)
		}
		if cas := d.CASes - s0.CASes; cas != 1 {
			t.Errorf("CASes = %d, want 1", cas)
		}
		if w := d.Writes - s0.Writes; w != 1 {
			t.Errorf("Writes = %d, want 1", w)
		}
		if r := d.Reads - s0.Reads; r != 0 {
			t.Errorf("Reads = %d, want 0", r)
		}
	})
	env.Run()
}
