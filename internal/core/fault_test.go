package core

import (
	"bytes"
	"testing"

	"ditto/internal/hashtable"
	"ditto/internal/ring"
	"ditto/internal/sim"
)

// keyOwnedBy finds a key index routed to node id under mc's current ring.
func keyOwnedBy(t *testing.T, mc *MultiCluster, id int) int {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if mc.snap().hashRing.Owner(ring.Point(hashtable.KeyHash(key(i)))) == id {
			return i
		}
	}
	t.Fatal("no key routed to node")
	return -1
}

// TestTrySetUnavailableTyped: a Set whose owner fail-stops mid-verb must
// surface a typed unavailable error through TrySet (not a string panic),
// and the same key must store fine once the pool reconfigures. This is
// the regression test for the panic→typed-error conversion: reverting
// setDirect's NoOwnerError or the rdma unreachable catch turns the error
// below back into a test-killing panic.
func TestTrySetUnavailableTyped(t *testing.T) {
	env := sim.NewEnv(1)
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	victim := mc.NodeID(0)
	ki := -1
	var gotErr error
	env.Go("writer", func(p *sim.Proc) {
		c := mc.NewClient(p)
		ki = keyOwnedBy(t, mc, victim)
		if err := c.TrySet(key(ki), value(ki)); err != nil {
			t.Fatalf("healthy TrySet errored: %v", err)
		}
		// Fail the node's fabric under the client without reconfiguring
		// the pool: the routing still targets the dead node, so the write
		// must fail typed, not wedge or panic.
		mc.nodes[victim].MN.Node.Fail()
		gotErr = c.TrySet(key(ki), value(ki))
		if gotErr == nil {
			t.Fatal("TrySet to a failed node returned nil")
		}
		if !IsUnavailable(gotErr) {
			t.Fatalf("TrySet error not IsUnavailable: %v", gotErr)
		}
		// Reconfigure (CrashNode re-routes the dead node's ranges) and
		// retry: the write must land on the survivor.
		mc.CrashNode(victim)
		if err := c.TrySet(key(ki), value(ki)); err != nil {
			t.Fatalf("TrySet after CrashNode errored: %v", err)
		}
		if v, ok := c.Get(key(ki)); !ok || !bytes.Equal(v, value(ki)) {
			t.Fatal("key not readable after reroute")
		}
	})
	env.Run()
	if gotErr == nil {
		t.Fatal("writer never observed the failure")
	}
}

// TestSetPanicsTypedAfterFail: the panicking Set keeps its fail-loud
// contract, but the panic value must now be a typed error a recovering
// caller can classify with IsUnavailable.
func TestSetPanicsTypedAfterFail(t *testing.T) {
	env := sim.NewEnv(2)
	mc := NewMultiCluster(env, 2, DefaultOptions(1000, 1000*320))
	victim := mc.NodeID(1)
	caught := false
	env.Go("writer", func(p *sim.Proc) {
		c := mc.NewClient(p)
		ki := keyOwnedBy(t, mc, victim)
		mc.nodes[victim].MN.Node.Fail()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Set to a failed node did not panic")
				}
				err, ok := r.(error)
				if !ok || !IsUnavailable(err) {
					t.Fatalf("Set panicked with untyped value: %v", r)
				}
				caught = true
			}()
			c.Set(key(ki), value(ki))
		}()
	})
	env.Run()
	if !caught {
		t.Fatal("typed panic never observed")
	}
}

// TestCrashNodeKeepsSurvivorKeys: crashing one node of four must lose
// ONLY keys the crashed node owned — every survivor-owned key stays
// readable with its exact value, because ring.Without reassigns only the
// crashed node's ranges. Reverting CrashNode's atomic ring+membership
// update (or ring.Without's stability property) breaks this.
func TestCrashNodeKeepsSurvivorKeys(t *testing.T) {
	env := sim.NewEnv(3)
	mc := NewMultiCluster(env, 4, DefaultOptions(4000, 4000*320))
	const n = 600
	victim := mc.NodeID(2)
	env.Go("c", func(p *sim.Proc) {
		c := mc.NewClient(p)
		owned := make([]bool, n)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
			owned[i] = mc.snap().hashRing.Owner(ring.Point(hashtable.KeyHash(key(i)))) == victim
		}
		mc.CrashNode(victim)
		lostOwned := 0
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if owned[i] {
				if ok {
					t.Fatalf("key %d survived its owner's crash", i)
				}
				lostOwned++
				continue
			}
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("survivor-owned key %d lost by a foreign crash", i)
			}
		}
		if lostOwned == 0 {
			t.Fatal("victim owned nothing; test proves nothing")
		}
	})
	env.Run()
	if mc.NodeCrashes != 1 || mc.NumNodes() != 3 {
		t.Fatalf("crashes=%d nodes=%d", mc.NodeCrashes, mc.NumNodes())
	}
}

// TestReclaimerRespawnsAfterKill: killing a node's background reclaimer
// mid-run must respawn it (OnCrash), and the respawned incarnation must
// keep reclaiming — UsedBytes returns below the high watermark under
// continued churn. Reverting the spawnReclaimer OnCrash hook leaves the
// pool with no reclaimer and this test's post-kill drain never happens.
func TestReclaimerRespawnsAfterKill(t *testing.T) {
	bigValue := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 240) }
	env := sim.NewEnv(4)
	cl := NewCluster(env, DefaultOptions(2000, 2000*320))
	cl.EnableBackgroundReclaim(0, 0)
	firstProc := cl.reclaimProc
	if firstProc == nil {
		t.Fatal("no reclaimer proc recorded")
	}
	env.Go("churn", func(p *sim.Proc) {
		c := cl.NewClient(p)
		// ~2.5x capacity: the same steady-state churn the reclaimer tests
		// use, so heap pressure persists well past the mid-churn kill.
		for i := 0; i < 5000; i++ {
			c.Set(key(i), bigValue(i))
		}
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(5_000_000) // mid-churn: the first incarnation is working
		env.Kill(cl.reclaimProc)
	})
	env.Run()
	if cl.ReclaimerRestarts() != 1 {
		t.Fatalf("reclaimer restarts = %d, want 1", cl.ReclaimerRestarts())
	}
	if cl.reclaimProc == firstProc || !cl.reclaimProc.Alive() {
		t.Fatal("reclaimer was not respawned alive")
	}
	// The respawned incarnation gets its own client (cl.reclaimer), so
	// its counters prove the REPLACEMENT worked: it woke under churn2's
	// pressure and actually evicted.
	post := cl.ReclaimerStats()
	if post.ReclaimerWakeups == 0 || post.Evictions == 0 {
		t.Fatalf("respawned reclaimer idle: wakeups=%d evictions=%d",
			post.ReclaimerWakeups, post.Evictions)
	}
}

// TestResharderRespawnsAfterKill: killing the resharder mid-migration
// must respawn an incarnation that finishes the membership change — the
// reshard completes and no key is lost. Reverting spawnResharder's
// OnCrash hook leaves oldRing non-nil forever and WaitReshard hangs
// (caught by the sim running out of events with the waiter parked).
func TestResharderRespawnsAfterKill(t *testing.T) {
	env := sim.NewEnv(5)
	mc := NewMultiCluster(env, 2, DefaultOptions(3000, 3000*320))
	const n = 500
	finished := false
	env.Go("driver", func(p *sim.Proc) {
		c := mc.NewClient(p)
		for i := 0; i < n; i++ {
			c.Set(key(i), value(i))
		}
		mc.AddNode()
		// Let the resharder get properly mid-flight before the kill.
		p.Sleep(200_000)
		rp := env.FindProc("resharder")
		if rp == nil {
			t.Fatal("no resharder running mid-reshard")
		}
		env.Kill(rp)
		mc.WaitReshard(p)
		if mc.ReshardRestarts != 1 {
			t.Fatalf("resharder restarts = %d, want 1", mc.ReshardRestarts)
		}
		for i := 0; i < n; i++ {
			v, ok := c.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d lost across the killed reshard", i)
			}
		}
		finished = true
	})
	env.Run()
	if !finished {
		t.Fatal("reshard never completed after the kill")
	}
}
