// Quickstart: create a Ditto cluster on the simulated memory pool, run a
// client, and exercise Get/Set/Delete.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ditto"
)

func main() {
	// One deterministic virtual-time environment hosts the whole cluster.
	env := ditto.NewEnv(42)

	// A cache sized for ~10k objects and 4 MB of values; LRU+LFU experts
	// with adaptive selection are the default.
	cluster := ditto.NewCluster(env, ditto.DefaultOptions(10_000, 4<<20))

	env.Go("app", func(p *ditto.Proc) {
		c := cluster.NewClient(p)

		c.Set([]byte("user:1"), []byte("ada lovelace"))
		c.Set([]byte("user:2"), []byte("grace hopper"))

		if v, ok := c.Get([]byte("user:1")); ok {
			fmt.Printf("user:1 = %s\n", v)
		}
		if _, ok := c.Get([]byte("user:404")); !ok {
			fmt.Println("user:404 = cache miss (as expected)")
		}

		c.Delete([]byte("user:2"))
		if _, ok := c.Get([]byte("user:2")); !ok {
			fmt.Println("user:2 deleted")
		}

		fmt.Printf("stats: gets=%d hits=%d misses=%d (virtual time %.1f µs)\n",
			c.Stats.Gets, c.Stats.Hits, c.Stats.Misses, float64(p.Now())/1000)
		c.Close()
	})
	env.Run()
	fmt.Println("supported caching algorithms:", ditto.Algorithms())
}
