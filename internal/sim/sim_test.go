package sim

import (
	"testing"
	"testing/quick"
)

func TestSleepAdvancesTime(t *testing.T) {
	env := NewEnv(1)
	var at int64
	env.Go("p", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		at = p.Now()
	})
	env.Run()
	if at != 5*Microsecond {
		t.Fatalf("got %d, want %d", at, 5*Microsecond)
	}
}

func TestSleepNegativeIsYield(t *testing.T) {
	env := NewEnv(1)
	var at int64 = -1
	env.Go("p", func(p *Proc) {
		p.Sleep(-10)
		at = p.Now()
	})
	env.Run()
	if at != 0 {
		t.Fatalf("negative sleep moved time to %d", at)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []int {
		env := NewEnv(42)
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			env.Go("p", func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(int64(1+i) * Microsecond)
					order = append(order, i)
				}
			})
		}
		env.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("wrong lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("p", func(p *Proc) {
			p.Sleep(Microsecond)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time ordering broken: %v", order)
		}
	}
}

func TestGoAtStartsLater(t *testing.T) {
	env := NewEnv(1)
	var started int64
	env.Go("early", func(p *Proc) { p.Sleep(10 * Microsecond) })
	env.GoAt(7*Microsecond, "late", func(p *Proc) { started = p.Now() })
	env.Run()
	if started != 7*Microsecond {
		t.Fatalf("late proc started at %d", started)
	}
}

func TestNestedGo(t *testing.T) {
	env := NewEnv(1)
	var childAt int64
	env.Go("parent", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		env.Go("child", func(c *Proc) {
			c.Sleep(Microsecond)
			childAt = c.Now()
		})
		p.Sleep(10 * Microsecond)
	})
	env.Run()
	if childAt != 4*Microsecond {
		t.Fatalf("child ran at %d, want %d", childAt, 4*Microsecond)
	}
}

func TestStopHaltsRun(t *testing.T) {
	env := NewEnv(1)
	n := 0
	env.Go("p", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			n++
			if n == 5 {
				env.Stop()
			}
			if n > 5 {
				t.Error("ran past Stop")
				return
			}
		}
	})
	env.Run()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestCondWaitBroadcast(t *testing.T) {
	env := NewEnv(1)
	cond := NewCond(env)
	var woke []int64
	for i := 0; i < 3; i++ {
		env.Go("waiter", func(p *Proc) {
			cond.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	env.Go("waker", func(p *Proc) {
		p.Sleep(9 * Microsecond)
		if cond.NumWaiters() != 3 {
			t.Errorf("waiters = %d, want 3", cond.NumWaiters())
		}
		cond.Broadcast()
	})
	env.Run()
	if len(woke) != 3 {
		t.Fatalf("only %d waiters woke", len(woke))
	}
	for _, w := range woke {
		if w != 9*Microsecond {
			t.Fatalf("waiter woke at %d", w)
		}
	}
}

func TestResourceSingleServerQueues(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		r := NewResource(env, 1)
		e1 := r.Acquire(100)
		e2 := r.Acquire(100)
		e3 := r.Acquire(100)
		if e1 != 100 || e2 != 200 || e3 != 300 {
			t.Errorf("got %d %d %d", e1, e2, e3)
		}
	})
	env.Run()
}

func TestResourceParallelServers(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		r := NewResource(env, 2)
		e1 := r.Acquire(100)
		e2 := r.Acquire(100)
		e3 := r.Acquire(100)
		if e1 != 100 || e2 != 100 || e3 != 200 {
			t.Errorf("got %d %d %d", e1, e2, e3)
		}
	})
	env.Run()
}

func TestResourceIdleGap(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		r := NewResource(env, 1)
		r.Acquire(100)
		p.Sleep(1000)
		// Server idled from 100 to 1000; next op starts now, not at 100.
		if e := r.Acquire(50); e != 1050 {
			t.Errorf("end = %d, want 1050", e)
		}
	})
	env.Run()
}

func TestResourceSetServers(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		r := NewResource(env, 4)
		for i := 0; i < 4; i++ {
			r.Acquire(int64(100 * (i + 1)))
		}
		r.SetServers(2)
		if r.Servers() != 2 {
			t.Fatalf("servers = %d", r.Servers())
		}
		// The two earliest-free servers (100 and 200) must have been kept.
		if e := r.Acquire(1); e != 101 {
			t.Errorf("end = %d, want 101", e)
		}
		// That server is now free at 101, earlier than the one free at 200.
		if e := r.Acquire(1); e != 102 {
			t.Errorf("end = %d, want 102", e)
		}
		if e := r.Acquire(200); e != 302 {
			t.Errorf("end = %d, want 302 (queued on the server free at 102)", e)
		}
		r.SetServers(8)
		if r.Servers() != 8 {
			t.Fatalf("servers after grow = %d", r.Servers())
		}
	})
	env.Run()
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		r := NewResource(env, 2)
		r.Acquire(500)
		r.Acquire(500)
		if u := r.Utilization(1000); u != 0.5 {
			t.Errorf("utilization = %v, want 0.5", u)
		}
	})
	env.Run()
}

func TestPerProcRNGDeterministic(t *testing.T) {
	draw := func() int64 {
		env := NewEnv(7)
		var v int64
		env.Go("p", func(p *Proc) { v = p.Rand().Int63() })
		env.Run()
		return v
	}
	if draw() != draw() {
		t.Fatal("per-proc RNG not deterministic")
	}
}

func TestRunContinuesTimeline(t *testing.T) {
	env := NewEnv(1)
	env.Go("a", func(p *Proc) { p.Sleep(100) })
	env.Run()
	if env.Now() != 100 {
		t.Fatalf("now = %d", env.Now())
	}
	env.Go("b", func(p *Proc) { p.Sleep(50) })
	env.Run()
	if env.Now() != 150 {
		t.Fatalf("now after second run = %d", env.Now())
	}
}

// Property: for any sequence of service times on a single-server resource,
// completions are monotonically increasing and total busy time equals the
// sum of service times.
func TestResourceAccountingProperty(t *testing.T) {
	f := func(svcs []uint16) bool {
		env := NewEnv(1)
		ok := true
		env.Go("p", func(p *Proc) {
			r := NewResource(env, 1)
			var last, sum int64
			for _, s := range svcs {
				svc := int64(s)
				end := r.Acquire(svc)
				if end < last {
					ok = false
				}
				last = end
				sum += svc
			}
			if r.Busy != sum {
				ok = false
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual time never decreases across an arbitrary schedule of
// sleeping processes.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(delays []uint16, procs uint8) bool {
		np := int(procs%8) + 1
		env := NewEnv(99)
		mono := true
		for i := 0; i < np; i++ {
			i := i
			env.Go("p", func(p *Proc) {
				prev := int64(-1)
				for j := i; j < len(delays); j += np {
					p.Sleep(int64(delays[j]))
					if p.Now() < prev {
						mono = false
					}
					prev = p.Now()
				}
			})
		}
		env.Run()
		return mono
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
